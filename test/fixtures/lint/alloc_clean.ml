(* Clean under typed-alloc: non-allocating code, module-initialization
   data, static currying chains, and one use of each escape hatch
   ([@alloc_ok] on a toplevel binding, on a local binding, and on an
   expression).  test_lint.ml asserts zero violations here. *)

type point = { x : int; y : int }

(* straight-line arithmetic: nothing to flag *)
let dot a b c d = (a * c) + (b * d)

let sum_fields (p : point) = p.x + p.y

(* module-initialization allocations run once and are free *)
let table = Array.make 8 0

let origin = { x = 0; y = 0 }

(* a static currying chain is one closure at module init, not per call *)
let scale = fun k -> fun v -> k * v

(* binding-level escape *)
let[@alloc_ok] point_of a b = { x = a; y = b }

(* local-binding and expression escapes *)
let total xs =
  let[@alloc_ok] acc = ref 0 in
  List.iter ((fun v -> acc := !acc + v) [@alloc_ok]) xs;
  !acc
