(* Clean under typed-poly-eq: comparisons at structurally safe types
   (immediates, strings, lists/options/tuples of those), physical
   equality (identity is the intent at mutable types), and the
   [@poly_ok] escape at an abstract type. *)

module Guid : sig
  type t

  val make : int -> t
end = struct
  type t = int

  let make g = g
end

let same_int (a : int) b = a = b

let same_string (a : string) b = a = b

let same_list (a : int list) b = a = b

let same_pair (a : int * string) b = a <> b

type cell = { mutable v : int }

let same_cell (a : cell) b = a == b

(* reviewed: Guid.t is an int under the hood and has no custom order *)
let same_guid a b = (Guid.make a = Guid.make b) [@poly_ok]
