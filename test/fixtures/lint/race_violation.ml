(* Seeded typed-race violations: a Domain.spawn site whose reachable
   bindings touch shared mutable state without Atomic/Mutex.  The call
   graph must reach [bump] and [scatter] from [run]'s spawn and flag the
   ref write/read, the mutable-field write/read, and the array store
   whose index is not an enclosing for-loop binder. *)

let hits = ref 0

type state = { mutable count : int }

let st = { count = 0 }

let bump () =
  hits := !hits + 1;
  st.count <- st.count + 1

let out = Array.make 8 0

let scatter k = out.(k * 2) <- k

let run () =
  let d = Domain.spawn (fun () -> bump ()) in
  scatter 1;
  bump ();
  Domain.join d
