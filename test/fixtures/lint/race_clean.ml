(* Clean under typed-race: the chunked-map pattern (each iteration writes
   its own slot, index is the for-loop binder), Atomic for the shared
   counter, and one [@race_ok] escape.  test_lint.ml asserts zero
   violations here even though [Domain.spawn] makes everything
   spawn-reachable. *)

let total = Atomic.make 0

let map_halves f n =
  let results = Array.make n None in
  let fill lo hi =
    for i = lo to hi do
      results.(i) <- Some (f i)
    done
  in
  let mid = n / 2 in
  let d = Domain.spawn (fun () -> fill 0 (mid - 1)) in
  fill mid (n - 1);
  Domain.join d;
  Atomic.incr total;
  results

(* reviewed: test-only counter, torn reads acceptable *)
let audited = ref 0

let note_audited () = (audited := !audited + 1) [@race_ok]

let run_audit () = Domain.join (Domain.spawn note_audited)
