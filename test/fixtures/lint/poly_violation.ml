(* Seeded typed-poly-eq violations: saturated [=] / [<>] / [compare] at
   an abstract type — exactly the case the syntactic tier punts on
   ("a saturated (=) on non-list operands is left to the type checker"). *)

module Guid : sig
  type t

  val make : int -> t
end = struct
  type t = int

  let make g = g
end

let same a b = Guid.make a = Guid.make b

let differ a b = Guid.make a <> Guid.make b

let order a b = compare (Guid.make a) (Guid.make b)
