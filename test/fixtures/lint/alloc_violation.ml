(* Seeded typed-alloc violations: one per allocating construct the typed
   pass recognizes.  test_lint.ml asserts every one of these fires; the
   @lint-typed alias never sees this file (it only scans lib/ cmts). *)

type point = { x : int; y : int }

(* closure built per call (not part of the binding's currying chain) *)
let bump_all xs = List.map (fun p -> p.x + 1) xs

(* tuple allocation *)
let pair a b = (a, b)

(* record allocation *)
let mk a b = { x = a; y = b }

(* ref cell *)
let cell v = ref v

(* partial application: the closure for the remaining argument *)
let bump_ints xs = List.map (( + ) 1) xs

(* float boxed at the polymorphic formals of [min] *)
let fmin (a : float) (b : float) = min a b

(* list cons *)
let grow x xs = x :: xs

(* polymorphic variant with payload *)
let tag x = `Tag x

(* lazy block *)
let delay x = lazy (x + 1)
