(* Differential tests for the packed insertion pipeline.

   The scratch-based hot path (Insert.insert: packed multicast + packed
   nearest-neighbor descent + slot-walk preliminary copy) and the original
   list-and-hashtable pipeline (Insert.Oracle.insert) drive two networks
   built from the same seed, metric and id/addr/gateway sequence through
   identical insertion + voluntary-delete churn.  Every per-insertion
   report (surrogate, shared prefix, multicast reach, pointer transfers,
   descent trace, exact cost) and, at the end, every routing-table slot and
   every mesh nearest-neighbor answer must agree exactly — across several
   seeds and on both a uniform-square and a transit-stub metric. *)

open Tapestry

let config = Config.default

let random_id rng =
  Node_id.random ~base:config.Config.base ~len:config.Config.id_digits rng

let entry_str (e : Routing_table.entry) =
  Printf.sprintf "%s@%h" (Node_id.to_string e.Routing_table.id)
    e.Routing_table.dist

let slot_str entries = String.concat "," (List.map entry_str entries)

let trace_str (t : Nearest_neighbor.trace) =
  Printf.sprintf "levels=%d contacted=%d updated=%d holes=%d"
    t.Nearest_neighbor.levels_walked t.Nearest_neighbor.nodes_contacted
    t.Nearest_neighbor.tables_updated t.Nearest_neighbor.holes_backfilled

let cost_str (c : Simnet.Cost.t) =
  Printf.sprintf "msgs=%d hops=%d latency=%h" c.Simnet.Cost.messages
    c.Simnet.Cost.hops c.Simnet.Cost.latency

let report_str (r : Insert.report) =
  Printf.sprintf "surrogate=%s shared=%d reached=%d transferred=%d %s %s"
    (Node_id.to_string r.Insert.surrogate.Node.id)
    r.Insert.shared_prefix r.Insert.multicast_reached
    r.Insert.pointers_transferred
    (trace_str r.Insert.nn_trace)
    (cost_str r.Insert.cost)

let check_networks_agree ~ctx net_p net_o =
  List.iter
    (fun (np : Node.t) ->
      let no = Network.find_exn net_o np.Node.id in
      let tp = np.Node.table and to_ = no.Node.table in
      for level = 0 to Routing_table.levels tp - 1 do
        for digit = 0 to config.Config.base - 1 do
          Alcotest.(check string)
            (Printf.sprintf "%s: node %s slot (%d,%d)" ctx
               (Node_id.to_string np.Node.id)
               level digit)
            (slot_str (Routing_table.slot to_ ~level ~digit))
            (slot_str (Routing_table.slot tp ~level ~digit))
        done
      done;
      let nn net (from : Node.t) =
        match Nearest_neighbor.nearest_neighbor net ~from with
        | Some n -> Node_id.to_string n.Node.id
        | None -> "-"
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: nearest neighbor of %s" ctx
           (Node_id.to_string np.Node.id))
        (nn net_o no) (nn net_p np))
    (Network.alive_nodes net_p)

(* Build two identical single-bootstrap networks and run the same churn
   script through the packed pipeline on one and the oracle pipeline on the
   other. *)
let drive_pair ~ctx ~seed metric ~inserts =
  let ext = Simnet.Rng.create ((seed * 7919) + 17) in
  let mk () = Network.create ~seed config metric in
  let net_p = mk () and net_o = mk () in
  let boot_id = random_id ext in
  let bootstrap net =
    let b = Node.create config ~id:boot_id ~addr:0 in
    b.Node.status <- Node.Active;
    Network.register net b
  in
  bootstrap net_p;
  bootstrap net_o;
  let alive = ref [ boot_id ] in
  for i = 1 to inserts do
    let id = random_id ext in
    if Network.find net_p id = None then begin
      let gw_id = Simnet.Rng.pick_list ext !alive in
      let adaptive = i mod 8 = 0 in
      let rp =
        Insert.insert ~id ~adaptive net_p
          ~gateway:(Network.find_exn net_p gw_id)
          ~addr:i
      in
      let ro =
        Insert.Oracle.insert ~id ~adaptive net_o
          ~gateway:(Network.find_exn net_o gw_id)
          ~addr:i
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: insert %d report" ctx i)
        (report_str ro) (report_str rp);
      alive := id :: !alive;
      (* interleave voluntary departures so later joins run against a
         churned mesh *)
      if i mod 5 = 0 && List.length !alive > 6 then begin
        let victim =
          Simnet.Rng.pick_list ext
            (List.filter (fun v -> not (Node_id.equal v boot_id)) !alive)
        in
        ignore (Delete.voluntary net_p (Network.find_exn net_p victim));
        ignore (Delete.voluntary net_o (Network.find_exn net_o victim));
        alive := List.filter (fun v -> not (Node_id.equal v victim)) !alive
      end
    end
  done;
  check_networks_agree ~ctx net_p net_o

let test_uniform () =
  List.iter
    (fun seed ->
      let rng = Simnet.Rng.create seed in
      let metric =
        Simnet.Topology.generate Simnet.Topology.Uniform_square ~n:80 ~rng
      in
      drive_pair
        ~ctx:(Printf.sprintf "uniform seed %d" seed)
        ~seed metric ~inserts:48)
    [ 11; 23; 47 ]

let test_transit_stub () =
  List.iter
    (fun seed ->
      let rng = Simnet.Rng.create seed in
      let ts = Simnet.Transit_stub.generate Simnet.Transit_stub.default_params ~rng in
      let metric = Simnet.Transit_stub.metric ts in
      drive_pair
        ~ctx:(Printf.sprintf "transit-stub seed %d" seed)
        ~seed metric ~inserts:48)
    [ 5; 29 ]

let () =
  Alcotest.run "insert_packed"
    [
      ( "differential",
        [
          Alcotest.test_case "packed vs oracle churn (uniform)" `Quick
            test_uniform;
          Alcotest.test_case "packed vs oracle churn (transit-stub)" `Quick
            test_transit_stub;
        ] );
    ]
