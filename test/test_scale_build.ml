(* The scale tier's streamed builder (Static_build.build_streamed) promises
   two equivalences, and the long 10^5..10^6 runs lean on both:

   - the mesh it produces is bit-identical to Insert.build_incremental with
     the same seed and addresses (same RNG draw order, same staged
     pipeline) — only the bookkeeping differs;
   - its returned statistics are bit-identical whatever [domains] is,
     because the post-build sweep runs over a fixed shard grid with an
     associative integer combine.

   Both are checked here at testable sizes, plus an invariant audit (which
   includes the O(n log n) footprint budget) on a streamed mesh. *)

open Tapestry
module Rng = Simnet.Rng
module Topology = Simnet.Topology

let n_differential = 4096
let seeds = [ 11; 23; 42 ]

(* Exhaustive per-node content signature: address, every slot's entries in
   slot order with exact distances, every level's backpointers (sorted:
   backpointer sets are unordered), pointer count.  Two networks with equal
   signatures are the same mesh. *)
let mesh_signature net =
  Network.alive_nodes net
  |> List.map (fun (n : Node.t) ->
         let t = n.Node.table in
         let b = Buffer.create 1024 in
         Buffer.add_string b (Node_id.to_string n.Node.id);
         Buffer.add_string b (Printf.sprintf "@%d#%d" n.Node.addr
                                (Pointer_store.size n.Node.pointers));
         for level = 0 to Routing_table.levels t - 1 do
           for digit = 0 to Routing_table.base t - 1 do
             List.iter
               (fun (e : Routing_table.entry) ->
                 Buffer.add_string b
                   (Printf.sprintf ";%d.%x:%s/%h" level digit
                      (Node_id.to_string e.Routing_table.id)
                      e.Routing_table.dist))
               (Routing_table.slot t ~level ~digit)
           done;
           Routing_table.backpointers t ~level
           |> List.map Node_id.to_string
           |> List.sort String.compare
           |> List.iter (fun s -> Buffer.add_string b ("^" ^ s))
         done;
         Buffer.contents b)
  |> List.sort String.compare

let build_both ~seed n =
  let rng = Rng.create seed in
  let metric = Topology.generate Topology.Uniform_square ~n ~rng in
  let addrs = List.init n (fun i -> i) in
  let inc_net, reports =
    Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs
  in
  let rng2 = Rng.create seed in
  let metric2 = Topology.generate Topology.Uniform_square ~n ~rng:rng2 in
  let str_net, stats =
    Static_build.build_streamed ~seed:(seed + 1) Config.default metric2 ~n
  in
  (inc_net, reports, str_net, stats)

let test_streamed_matches_incremental seed () =
  let inc_net, reports, str_net, stats = build_both ~seed n_differential in
  Alcotest.(check int)
    "same node count" (Network.node_count inc_net)
    (Network.node_count str_net);
  let sig_inc = mesh_signature inc_net and sig_str = mesh_signature str_net in
  (* compare pairwise for a pinpointed failure, then wholesale *)
  List.iter2
    (fun a b -> Alcotest.(check string) "node signature" a b)
    sig_inc sig_str;
  Alcotest.(check (list string)) "identical meshes" sig_inc sig_str;
  (* the streamed accumulators must agree with the report list they
     replaced (float fold order matches build_incremental's insertion
     order, so tolerances stay tiny) *)
  let feps = Alcotest.float 1e-6 in
  (* build_incremental reports the n-1 joins after the bootstrap — exactly
     the joins the streamed accumulators saw *)
  let means extract = Simnet.Stats.mean (List.map extract reports) in
  Alcotest.(check feps)
    "streamed msgs mean = report msgs mean"
    (means (fun (r : Insert.report) ->
         float_of_int r.Insert.cost.Simnet.Cost.messages))
    stats.Static_build.msgs.Static_build.mean;
  Alcotest.(check feps)
    "streamed hops mean = report hops mean"
    (means (fun (r : Insert.report) ->
         float_of_int r.Insert.cost.Simnet.Cost.hops))
    stats.Static_build.hops.Static_build.mean;
  Alcotest.(check feps)
    "streamed multicast mean = report multicast mean"
    (means (fun (r : Insert.report) ->
         float_of_int r.Insert.multicast_reached))
    stats.Static_build.multicast_reached.Static_build.mean;
  Alcotest.(check int)
    "streamed pointer transfers = report sum"
    (List.fold_left
       (fun acc (r : Insert.report) -> acc + r.Insert.pointers_transferred)
       0 reports)
    stats.Static_build.pointers_transferred;
  Alcotest.(check int)
    "stats cover every join" (n_differential - 1)
    (stats.Static_build.n - 1)

let test_domain_invariance () =
  let n = 2048 and seed = 7 in
  let build domains =
    let rng = Rng.create seed in
    let metric = Topology.generate Topology.Uniform_square ~n ~rng in
    Static_build.build_streamed ~seed:(seed + 1) ~domains Config.default
      metric ~n
  in
  let net1, s1 = build 1 in
  let _net3, s3 = build 3 in
  let _net4, s4 = build 4 in
  (* stream_stats is records of floats and ints all the way down, so
     structural equality here means bit-identical statistics *)
  Alcotest.(check bool) "stats: 1 domain = 3 domains" true (s1 = s3);
  Alcotest.(check bool) "stats: 1 domain = 4 domains" true (s1 = s4);
  Alcotest.(check bool)
    "footprint identical across domain counts" true
    (s1.Static_build.footprint = s3.Static_build.footprint);
  (* and the sweep really saw the mesh: entry mean matches a direct count *)
  let total = ref 0 and cnt = ref 0 in
  Network.iter_alive net1 (fun (nd : Node.t) ->
      incr cnt;
      total := !total + Routing_table.entry_count_packed nd.Node.table);
  Alcotest.(check (Alcotest.float 1e-9))
    "sweep entry mean = direct mean"
    (float_of_int !total /. float_of_int !cnt)
    s1.Static_build.entries.Static_build.mean

let test_streamed_audit_clean () =
  let n = n_differential and seed = 42 in
  let rng = Rng.create seed in
  let metric = Topology.generate Topology.Uniform_square ~n ~rng in
  let net, stats =
    Static_build.build_streamed ~seed:(seed + 1) Config.default metric ~n
  in
  let report = Audit.run net in
  Alcotest.(check int) "audits every node" n report.Audit.nodes_audited;
  if not (Audit.is_clean report) then
    Alcotest.failf "streamed mesh audit: %a" Audit.pp_report report;
  (* the audit's footprint gate passed; sanity-check the estimate itself
     is in a plausible O(n log n) band rather than degenerate *)
  let per_node =
    stats.Static_build.footprint.Network.total_bytes / n
  in
  Alcotest.(check bool)
    (Printf.sprintf "bytes/node plausible (%d)" per_node)
    true
    (per_node > 1024 && per_node < 65536)

let () =
  Alcotest.run "scale_build"
    [
      ( "streamed = incremental",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "n=%d seed=%d" n_differential seed)
              `Quick
              (test_streamed_matches_incremental seed))
          seeds );
      ( "domains",
        [
          Alcotest.test_case "stats bit-identical for any domain count"
            `Quick test_domain_invariance;
        ] );
      ( "audit",
        [
          Alcotest.test_case "streamed mesh is audit-clean (incl. footprint)"
            `Quick test_streamed_audit_clean;
        ] );
    ]
