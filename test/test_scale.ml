(* The hot-path data structures behind this PR's performance work:

   - the dense swap-remove alive array in Network (O(1) sampling) must track
     the true alive set exactly through arbitrary churn, and stay uniform;
   - the incremental core trie must match a trie rebuilt from scratch;
   - the grid spatial index in Metric must agree with the brute-force scans
     bit-for-bit, tie-breaks included, on plane and torus point sets;
   - Parallel.map must produce identical results whatever the domain count,
     up to whole experiment tables (`--domains 1` vs `--domains 4`). *)

open Tapestry
module Rng = Simnet.Rng
module Metric = Simnet.Metric
module Topology = Simnet.Topology
module Parallel = Simnet.Parallel

let sorted_ids nodes =
  nodes
  |> List.map (fun (n : Node.t) -> Node_id.to_string n.Node.id)
  |> List.sort String.compare

(* --- alive array under churn --- *)

let test_alive_set_churn () =
  let n = 160 in
  let rng = Rng.create 99 in
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let metric = Metric.of_points pts in
  let net = Network.create ~seed:7 Config.default metric in
  (* reference: id -> node for everything we believe alive *)
  let reference : Node.t Node_id.Tbl.t = Node_id.Tbl.create 64 in
  let check_step step =
    let want = Node_id.Tbl.fold (fun _ nd acc -> nd :: acc) reference [] in
    Alcotest.(check int)
      (Printf.sprintf "node_count after step %d" step)
      (List.length want) (Network.node_count net);
    Alcotest.(check (list string))
      (Printf.sprintf "alive set after step %d" step)
      (sorted_ids want)
      (sorted_ids (Network.alive_nodes net));
    if Network.node_count net > 0 then begin
      let picked = Network.random_alive net in
      Alcotest.(check bool)
        (Printf.sprintf "random_alive is alive after step %d" step)
        true
        (Node_id.Tbl.mem reference picked.Node.id)
    end
  in
  let churn = Rng.create 13 in
  let next_addr = ref 0 in
  for step = 0 to 399 do
    let registered = Network.node_count net in
    if !next_addr < n && (registered = 0 || Rng.bool churn) then begin
      (* join: register as Inserting, sometimes activate immediately *)
      let node = Node.create Config.default ~id:(Network.fresh_id net) ~addr:!next_addr in
      incr next_addr;
      if Rng.bool churn then node.Node.status <- Node.Active;
      Network.register net node;
      if (match node.Node.status with Node.Inserting -> true | _ -> false)
         && Rng.bool churn
      then Network.activate net node;
      Node_id.Tbl.replace reference node.Node.id node
    end
    else if registered > 0 then begin
      let victim = Network.random_alive net in
      match (victim.Node.status, Rng.int churn 3) with
      | Node.Active, 0 ->
          (* announce departure but stay alive *)
          Network.begin_leaving net victim
      | _, _ ->
          Network.mark_dead net victim;
          Node_id.Tbl.remove reference victim.Node.id
    end;
    if step mod 20 = 0 then check_step step
  done;
  check_step 400;
  (* the core trie must equal one rebuilt from scratch *)
  let rebuilt = Id_index.create ~base:Config.default.Config.base in
  Node_id.Tbl.iter
    (fun _ nd -> if Node.is_core nd then Id_index.add rebuilt nd.Node.id)
    reference;
  let dump idx =
    Id_index.ids_with_prefix idx ~prefix:[||] ~len:0
    |> List.map Node_id.to_string
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "incremental core index = scratch rebuild" (dump rebuilt)
    (dump net.Network.core_index);
  Alcotest.(check (list string))
    "core_nodes reads the incremental index" (dump rebuilt)
    (sorted_ids (Network.core_nodes net))

let test_random_alive_uniform () =
  let n = 24 in
  let rng = Rng.create 5 in
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let net = Network.create ~seed:11 Config.default (Metric.of_points pts) in
  for addr = 0 to n - 1 do
    let node = Node.create Config.default ~id:(Network.fresh_id net) ~addr in
    node.Node.status <- Node.Active;
    Network.register net node
  done;
  (* kill a few so the array has seen swap-removes before we sample *)
  for _ = 1 to 8 do
    Network.mark_dead net (Network.random_alive net)
  done;
  let alive = Network.node_count net in
  Alcotest.(check int) "16 survivors" 16 alive;
  let counts = Node_id.Tbl.create alive in
  let draws = 4000 in
  for _ = 1 to draws do
    let nd = Network.random_alive net in
    let c = Option.value ~default:0 (Node_id.Tbl.find_opt counts nd.Node.id) in
    Node_id.Tbl.replace counts nd.Node.id (c + 1)
  done;
  Alcotest.(check int) "every survivor sampled" alive (Node_id.Tbl.length counts);
  let expected = draws / alive in
  Node_id.Tbl.iter
    (fun id c ->
      if c < expected / 3 || c > expected * 3 then
        Alcotest.failf "node %s drawn %d times (expected about %d)"
          (Node_id.to_string id) c expected)
    counts

(* --- grid index vs brute oracles --- *)

let check_metric_equivalence ~what metric =
  let m = Metric.size metric in
  let qrng = Rng.create 21 in
  let diam = Metric.diameter metric ~sample:500 ~rng:(Rng.create 22) in
  for _ = 1 to 60 do
    let p = Rng.int qrng m in
    let r = Rng.float qrng (0.6 *. diam) in
    Alcotest.(check (list int))
      (Printf.sprintf "%s: ball p=%d r=%.3f" what p r)
      (Metric.ball_brute metric p r)
      (Metric.ball metric p r);
    Alcotest.(check int)
      (Printf.sprintf "%s: ball_count p=%d r=%.3f" what p r)
      (Metric.ball_count_brute metric p r)
      (Metric.ball_count metric p r);
    Alcotest.(check (option int))
      (Printf.sprintf "%s: nearest_other p=%d" what p)
      (Metric.nearest_other_brute metric p)
      (Metric.nearest_other metric p);
    let k = 1 + Rng.int qrng (m + 4) in
    Alcotest.(check (list int))
      (Printf.sprintf "%s: k_nearest p=%d k=%d" what p k)
      (Metric.k_nearest_brute metric p ~k)
      (Metric.k_nearest metric p ~k)
  done;
  (* degenerate radii *)
  let p = Rng.int qrng m in
  Alcotest.(check (list int))
    (what ^ ": zero-radius ball is the point itself")
    (Metric.ball_brute metric p 0.)
    (Metric.ball metric p 0.);
  Alcotest.(check int)
    (what ^ ": whole-space ball")
    m
    (Metric.ball_count metric p (2. *. diam +. 1.))

let test_grid_plane () =
  let rng = Rng.create 31 in
  List.iter
    (fun n ->
      let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
      let metric = Metric.of_points pts in
      Alcotest.(check bool) "plane metric is indexed" true (Metric.indexed metric);
      check_metric_equivalence ~what:(Printf.sprintf "plane n=%d" n) metric)
    [ 1; 7; 64; 300 ]

let test_grid_torus () =
  let rng = Rng.create 37 in
  List.iter
    (fun n ->
      let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
      let metric = Metric.of_points_torus ~side:1.0 pts in
      Alcotest.(check bool) "torus metric is indexed" true (Metric.indexed metric);
      check_metric_equivalence ~what:(Printf.sprintf "torus n=%d" n) metric)
    [ 1; 7; 64; 300 ]

let test_grid_clustered_points () =
  (* clustered point sets stress uneven grid occupancy *)
  let rng = Rng.create 41 in
  let centers = Array.init 5 (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let pts =
    Array.init 200 (fun i ->
        let cx, cy = centers.(i mod Array.length centers) in
        (cx +. Rng.float rng 0.03, cy +. Rng.float rng 0.03))
  in
  check_metric_equivalence ~what:"clustered plane" (Metric.of_points pts);
  check_metric_equivalence ~what:"clustered torus"
    (Metric.of_points_torus ~side:1.2 pts)

let test_topology_metrics () =
  (* every generated topology, indexed or not, satisfies the same
     grid-vs-brute contract (non-indexed kinds trivially: both brute) *)
  List.iter
    (fun kind ->
      let rng = Rng.create 43 in
      let metric = Topology.generate kind ~n:120 ~rng in
      check_metric_equivalence ~what:(Topology.kind_name kind) metric)
    Topology.all_kinds

(* --- deterministic parallel map --- *)

let test_parallel_map_identical () =
  let f i =
    let rng = Parallel.task_rng ~seed:77 ~task:i in
    let acc = ref 0 in
    for _ = 1 to 50 do
      acc := !acc + Rng.int rng 1000
    done;
    (i, !acc)
  in
  let seq = Parallel.map ~domains:1 37 ~f in
  List.iter
    (fun d ->
      let par = Parallel.map ~domains:d 37 ~f in
      Alcotest.(check (array (pair int int)))
        (Printf.sprintf "map domains=1 vs domains=%d" d)
        seq par)
    [ 2; 3; 4; 8; 64 ];
  Alcotest.(check (array (pair int int))) "n=0" [||] (Parallel.map ~domains:4 0 ~f);
  let xs = [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check (list string))
    "map_list keeps order"
    (List.mapi (fun i x -> Printf.sprintf "%d:%s" i x) xs)
    (Parallel.map_list ~domains:3 xs ~f:(fun i x -> Printf.sprintf "%d:%s" i x))

let test_task_rng_independent () =
  let a = Parallel.task_rng ~seed:5 ~task:0 in
  let b = Parallel.task_rng ~seed:5 ~task:1 in
  let a' = Parallel.task_rng ~seed:5 ~task:0 in
  Alcotest.(check int) "same (seed, task) replays" (Rng.int a 1000000)
    (Rng.int a' 1000000);
  let draws_a = List.init 20 (fun _ -> Rng.int a 100) in
  let draws_b = List.init 20 (fun _ -> Rng.int b 100) in
  Alcotest.(check bool) "different tasks give different streams" false
    (List.for_all2 Int.equal draws_a draws_b)

let test_experiment_domains_identical () =
  let render tables = String.concat "\n" (List.map Simnet.Stats.Table.render tables) in
  let one =
    render (Evaluation.Experiment.insert_scaling ~seed:42 ~domains:1 Evaluation.Experiment.Quick)
  in
  let four =
    render (Evaluation.Experiment.insert_scaling ~seed:42 ~domains:4 Evaluation.Experiment.Quick)
  in
  Alcotest.(check string) "insert_scaling tables bit-identical" one four;
  let one =
    render (Evaluation.Experiment.table_quality ~seed:42 ~domains:1 Evaluation.Experiment.Quick)
  in
  let three =
    render (Evaluation.Experiment.table_quality ~seed:42 ~domains:3 Evaluation.Experiment.Quick)
  in
  Alcotest.(check string) "table_quality tables bit-identical" one three

let () =
  Alcotest.run "scale"
    [
      ( "alive set",
        [
          Alcotest.test_case "exact under churn" `Quick test_alive_set_churn;
          Alcotest.test_case "uniform sampling" `Quick test_random_alive_uniform;
        ] );
      ( "spatial index",
        [
          Alcotest.test_case "plane grid = brute" `Quick test_grid_plane;
          Alcotest.test_case "torus grid = brute" `Quick test_grid_torus;
          Alcotest.test_case "clustered points" `Quick test_grid_clustered_points;
          Alcotest.test_case "all topology kinds" `Quick test_topology_metrics;
        ] );
      ( "parallel map",
        [
          Alcotest.test_case "identical across domains" `Quick
            test_parallel_map_identical;
          Alcotest.test_case "task rngs independent" `Quick
            test_task_rng_independent;
          Alcotest.test_case "experiments identical across domains" `Slow
            test_experiment_domains_identical;
        ] );
    ]
