(* Unit tests for the simulation substrate. *)

open Simnet

let check_float = Alcotest.(check (float 1e-9))

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (fun k -> Heap.push h k k) [ 5; 1; 4; 1; 3; 9; 0 ];
  let keys = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 1; 3; 4; 5; 9 ] keys

let test_heap_stability () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 1 "first";
  Heap.push h 1 "second";
  Heap.push h 1 "third";
  let vals = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "FIFO among equal keys"
    [ "first"; "second"; "third" ] vals

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair int string))) "peek empty" None (Heap.peek h);
  Heap.push h 2 "b";
  Heap.push h 1 "a";
  Alcotest.(check (option (pair int string))) "peek min" (Some (1, "a")) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h);
  ignore (Heap.pop_exn h);
  Alcotest.(check (option (pair int string))) "next" (Some (2, "b")) (Heap.peek h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_large () =
  let h = Heap.create ~cmp:Int.compare in
  let rng = Rng.create 1 in
  for _ = 1 to 5000 do
    let k = Rng.int rng 1000 in
    Heap.push h k k
  done;
  let sorted = List.map fst (Heap.to_sorted_list h) in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "5000 elements drain sorted" true (ascending sorted)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10000 do
    let v = Rng.int rng 16 in
    if v < 0 || v >= 16 then Alcotest.failf "out of range: %d" v;
    let f = Rng.float rng 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int parent 1000000) in
  let ys = List.init 50 (fun _ -> Rng.int child 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.exponential rng ~mean:5.0 in
    if x < 0. then Alcotest.fail "negative exponential draw"
  done

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "mean" 3.0 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_float "p50" 3.0 s.Stats.p50

let test_stats_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "n" 0 s.Stats.n

let test_stats_gini () =
  check_float "uniform gini" 0.0 (Stats.gini [ 5.; 5.; 5.; 5. ]);
  let concentrated = Stats.gini [ 0.; 0.; 0.; 100. ] in
  Alcotest.(check bool) "concentrated high" true (concentrated > 0.7)

let test_stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile xs 0.5);
  check_float "p99" 99. (Stats.percentile xs 0.99);
  check_float "p100" 100. (Stats.percentile xs 1.0)

let test_stats_table_render () =
  let t = Stats.Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "1"; "2" ];
  let s = Stats.Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 4 = "== t");
  Alcotest.check_raises "arity" (Invalid_argument "Stats.Table.add_row: wrong arity")
    (fun () -> Stats.Table.add_row t [ "only-one" ])

(* --- Metric --- *)

let test_metric_euclidean () =
  let m = Metric.of_points [| (0., 0.); (3., 4.) |] in
  check_float "3-4-5" 5.0 (Metric.dist m 0 1);
  check_float "symmetric" (Metric.dist m 0 1) (Metric.dist m 1 0);
  check_float "self" 0.0 (Metric.dist m 0 0)

let test_metric_torus_wrap () =
  let m = Metric.of_points_torus ~side:1.0 [| (0.05, 0.5); (0.95, 0.5) |] in
  check_float "wraps around" 0.1 (Metric.dist m 0 1)

let test_metric_ball () =
  let m = Metric.of_points [| (0., 0.); (1., 0.); (2., 0.); (5., 0.) |] in
  Alcotest.(check (list int)) "ball r=2" [ 0; 1; 2 ] (Metric.ball m 0 2.0);
  Alcotest.(check int) "ball count" 3 (Metric.ball_count m 0 2.0)

let test_metric_k_closest () =
  let m = Metric.of_points [| (0., 0.); (1., 0.); (2., 0.); (3., 0.) |] in
  Alcotest.(check (list int)) "two closest to 0" [ 1; 2 ]
    (Metric.k_closest m 0 ~k:2 ~candidates:[ 3; 2; 1 ])

let test_metric_nearest_other () =
  let m = Metric.of_points [| (0., 0.); (10., 0.); (1., 0.) |] in
  Alcotest.(check (option int)) "nearest" (Some 2) (Metric.nearest_other m 0)

let test_metric_triangle_random () =
  (* the random-metric generator must satisfy the triangle inequality *)
  let rng = Rng.create 17 in
  let m = Topology.generate Topology.Random_metric ~n:30 ~rng in
  for i = 0 to 29 do
    for j = 0 to 29 do
      for k = 0 to 29 do
        let direct = Metric.dist m i j in
        let via = Metric.dist m i k +. Metric.dist m k j in
        if direct > via +. 1e-9 then
          Alcotest.failf "triangle violated: d(%d,%d)=%f > %f" i j direct via
      done
    done
  done

let test_expansion_estimates () =
  let rng = Rng.create 23 in
  let torus = Topology.generate Topology.Uniform_torus ~n:400 ~rng in
  let c_torus = Metric.expansion_estimate torus ~samples:150 ~rng in
  Alcotest.(check bool) "torus small expansion" true (c_torus < 12.);
  let star = Topology.generate Topology.Star ~n:400 ~rng in
  let c_star = Metric.expansion_estimate star ~samples:150 ~rng in
  Alcotest.(check bool)
    (Printf.sprintf "star blows up (torus %.1f < star %.1f)" c_torus c_star)
    true
    (c_star > 3. *. c_torus)

(* --- Topology --- *)

let test_topologies_generate () =
  let rng = Rng.create 29 in
  List.iter
    (fun kind ->
      let m = Topology.generate kind ~n:64 ~rng in
      Alcotest.(check int) (Topology.kind_name kind ^ " size") 64 (Metric.size m);
      (* spot-check symmetry and identity *)
      check_float "self distance" 0. (Metric.dist m 5 5);
      check_float "symmetry"
        (Metric.dist m 3 40)
        (Metric.dist m 40 3))
    Topology.all_kinds

let test_ring_metric () =
  let rng = Rng.create 1 in
  let m = Topology.generate Topology.Ring ~n:10 ~rng in
  check_float "adjacent" 0.1 (Metric.dist m 0 1);
  check_float "wrap" 0.1 (Metric.dist m 0 9);
  check_float "opposite" 0.5 (Metric.dist m 0 5)

(* --- Graph --- *)

let test_graph_dijkstra () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 2.0;
  Graph.add_edge g 0 2 10.0;
  Graph.add_edge g 2 3 1.0;
  let d = Graph.dijkstra g 0 in
  check_float "direct" 1.0 d.(1);
  check_float "via 1" 3.0 d.(2);
  check_float "chain" 4.0 d.(3)

let test_graph_min_edge_kept () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 5.0;
  Graph.add_edge g 0 1 2.0;
  check_float "min weight" 2.0 (Graph.dijkstra g 0).(1)

let test_graph_disconnected () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  Alcotest.(check bool) "not connected" false (Graph.connected g);
  Alcotest.check_raises "to_metric fails"
    (Failure "Graph.to_metric: disconnected graph") (fun () ->
      ignore (Graph.to_metric g))

let test_graph_metric_triangle () =
  let rng = Rng.create 31 in
  let g = Graph.create 20 in
  (* random connected graph: spanning chain + extra edges *)
  for i = 0 to 18 do
    Graph.add_edge g i (i + 1) (1. +. Rng.float rng 3.)
  done;
  for _ = 1 to 20 do
    Graph.add_edge g (Rng.int rng 20) (Rng.int rng 20) (1. +. Rng.float rng 5.)
  done;
  let m = Graph.to_metric g in
  for i = 0 to 19 do
    for j = 0 to 19 do
      for k = 0 to 19 do
        if Metric.dist m i j > Metric.dist m i k +. Metric.dist m k j +. 1e-9 then
          Alcotest.fail "shortest-path metric must satisfy the triangle inequality"
      done
    done
  done

(* --- Transit-stub --- *)

let test_transit_stub_structure () =
  let rng = Rng.create 37 in
  let p = Transit_stub.default_params in
  let ts = Transit_stub.generate p ~rng in
  let expected_stubs = p.Transit_stub.transit_domains * p.Transit_stub.transit_size
                       * p.Transit_stub.stubs_per_transit in
  Alcotest.(check int) "stub count" expected_stubs (Transit_stub.stub_count ts);
  Alcotest.(check int) "hosts"
    (expected_stubs * p.Transit_stub.stub_size)
    (List.length (Transit_stub.hosts ts));
  (* transit nodes have no stub *)
  Alcotest.(check (option int)) "transit node" None (Transit_stub.stub_of ts 0)

let test_transit_stub_latency_separation () =
  let rng = Rng.create 41 in
  let ts = Transit_stub.generate Transit_stub.default_params ~rng in
  let m = Transit_stub.metric ts in
  (* mean intra-stub distance must be much below mean inter-stub distance *)
  let hosts = Array.of_list (Transit_stub.hosts ts) in
  let intra = ref [] and inter = ref [] in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a < b then
            if Transit_stub.same_stub ts a b then
              intra := Metric.dist m a b :: !intra
            else inter := Metric.dist m a b :: !inter)
        hosts)
    hosts;
  let mi = Stats.mean !intra and me = Stats.mean !inter in
  Alcotest.(check bool)
    (Printf.sprintf "intra %.1f << inter %.1f" mi me)
    true
    (me > 5. *. mi)

(* --- Cost --- *)

let test_cost_accounting () =
  let c = Cost.make () in
  Cost.send c ~dist:2.0;
  Cost.send c ~dist:3.0;
  Cost.message c ~dist:1.0;
  Alcotest.(check int) "messages" 3 c.Cost.messages;
  Alcotest.(check int) "hops" 2 c.Cost.hops;
  check_float "latency" 6.0 c.Cost.latency;
  let snap = Cost.snapshot c in
  Cost.send c ~dist:1.0;
  let d = Cost.diff (Cost.snapshot c) snap in
  Alcotest.(check int) "diff messages" 1 d.Cost.messages;
  Cost.zero c;
  Alcotest.(check int) "zeroed" 0 c.Cost.messages

(* --- Fiber --- *)

let test_fiber_ordering () =
  let sched = Fiber.create () in
  let log = ref [] in
  Fiber.spawn sched (fun () ->
      Fiber.sleep sched 2.0;
      log := "b" :: !log);
  Fiber.spawn sched (fun () ->
      Fiber.sleep sched 1.0;
      log := "a" :: !log;
      Fiber.sleep sched 2.0;
      log := "c" :: !log);
  Fiber.run sched;
  Alcotest.(check (list string)) "virtual-time order" [ "c"; "b"; "a" ] !log;
  check_float "clock at last event" 3.0 (Fiber.now sched);
  Alcotest.(check int) "no stalls" 0 (Fiber.stalled_fibers sched)

let test_fiber_ivar () =
  let sched = Fiber.create () in
  let iv = Fiber.Ivar.create sched in
  let got = ref 0 in
  Fiber.spawn sched (fun () -> got := Fiber.Ivar.read iv);
  Fiber.spawn sched (fun () ->
      Fiber.sleep sched 5.0;
      Fiber.Ivar.fill iv 42);
  Fiber.run sched;
  Alcotest.(check int) "ivar value" 42 !got;
  Alcotest.(check bool) "full" true (Fiber.Ivar.is_full iv);
  Alcotest.check_raises "double fill"
    (Invalid_argument "Fiber.Ivar.fill: already filled") (fun () ->
      Fiber.Ivar.fill iv 1)

let test_fiber_stalled () =
  let sched = Fiber.create () in
  let iv : int Fiber.Ivar.ivar = Fiber.Ivar.create sched in
  Fiber.spawn sched (fun () -> ignore (Fiber.Ivar.read iv));
  Fiber.run sched;
  Alcotest.(check int) "one stalled fiber" 1 (Fiber.stalled_fibers sched)

let test_fiber_run_until () =
  let sched = Fiber.create () in
  let fired = ref 0 in
  List.iter
    (fun t -> Fiber.spawn_at sched t (fun () -> incr fired))
    [ 1.0; 2.0; 3.0 ];
  Fiber.run_until sched 2.5;
  Alcotest.(check int) "two events by t=2.5" 2 !fired;
  Fiber.run sched;
  Alcotest.(check int) "all events" 3 !fired

let () =
  Alcotest.run "simnet"
    [
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "stability" `Quick test_heap_stability;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "pop_exn empty" `Quick test_heap_pop_exn_empty;
          Alcotest.test_case "large" `Quick test_heap_large;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "exponential" `Quick test_rng_exponential_positive;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "gini" `Quick test_stats_gini;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "table render" `Quick test_stats_table_render;
        ] );
      ( "metric",
        [
          Alcotest.test_case "euclidean" `Quick test_metric_euclidean;
          Alcotest.test_case "torus wrap" `Quick test_metric_torus_wrap;
          Alcotest.test_case "ball" `Quick test_metric_ball;
          Alcotest.test_case "k-closest" `Quick test_metric_k_closest;
          Alcotest.test_case "nearest other" `Quick test_metric_nearest_other;
          Alcotest.test_case "random-metric triangle" `Quick test_metric_triangle_random;
          Alcotest.test_case "expansion estimates" `Quick test_expansion_estimates;
        ] );
      ( "topology",
        [
          Alcotest.test_case "all kinds generate" `Quick test_topologies_generate;
          Alcotest.test_case "ring distances" `Quick test_ring_metric;
        ] );
      ( "graph",
        [
          Alcotest.test_case "dijkstra" `Quick test_graph_dijkstra;
          Alcotest.test_case "min edge" `Quick test_graph_min_edge_kept;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected;
          Alcotest.test_case "metric triangle" `Quick test_graph_metric_triangle;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "structure" `Quick test_transit_stub_structure;
          Alcotest.test_case "latency separation" `Quick test_transit_stub_latency_separation;
        ] );
      ("cost", [ Alcotest.test_case "accounting" `Quick test_cost_accounting ]);
      ( "fiber",
        [
          Alcotest.test_case "virtual-time ordering" `Quick test_fiber_ordering;
          Alcotest.test_case "ivar" `Quick test_fiber_ivar;
          Alcotest.test_case "stalled detection" `Quick test_fiber_stalled;
          Alcotest.test_case "run_until" `Quick test_fiber_run_until;
        ] );
    ]
