(* Unit tests for identifiers, the trie index, routing tables, pointer
   stores and configuration. *)

open Tapestry

let rng = Simnet.Rng.create 2

let id_of s = Node_id.of_string ~base:16 s

(* --- Node_id --- *)

let test_id_roundtrip () =
  let id = Node_id.random ~base:16 ~len:8 rng in
  let s = Node_id.to_string id in
  Alcotest.(check int) "length" 8 (String.length s);
  Alcotest.(check bool) "roundtrip" true (Node_id.equal id (id_of s))

let test_id_of_string_invalid () =
  Alcotest.check_raises "bad digit"
    (Invalid_argument "Node_id.of_string: bad digit z") (fun () ->
      ignore (id_of "z1234567"))

let test_id_common_prefix () =
  Alcotest.(check int) "shares 3" 3 (Node_id.common_prefix_len (id_of "abc123") (id_of "abcf00"));
  Alcotest.(check int) "shares 0" 0 (Node_id.common_prefix_len (id_of "1bc123") (id_of "abcf00"));
  Alcotest.(check int) "identical" 6 (Node_id.common_prefix_len (id_of "abc123") (id_of "abc123"))

let test_id_has_prefix () =
  let id = id_of "abc123" in
  Alcotest.(check bool) "yes" true
    (Node_id.has_prefix id ~prefix:(Node_id.digits (id_of "abcfff")) ~len:3);
  Alcotest.(check bool) "no" false
    (Node_id.has_prefix id ~prefix:(Node_id.digits (id_of "abffff")) ~len:3)

let test_id_salt () =
  let id = Node_id.random ~base:16 ~len:8 rng in
  Alcotest.(check bool) "salt 0 is identity" true (Node_id.equal id (Node_id.salt ~base:16 id 0));
  let s1 = Node_id.salt ~base:16 id 1 in
  let s1' = Node_id.salt ~base:16 id 1 in
  Alcotest.(check bool) "salt deterministic" true (Node_id.equal s1 s1');
  let s2 = Node_id.salt ~base:16 id 2 in
  Alcotest.(check bool) "salts differ" false (Node_id.equal s1 s2)

let test_id_int_roundtrip () =
  let id = id_of "00ff01" in
  let v = Node_id.to_int ~base:16 id in
  Alcotest.(check int) "value" 0x00ff01 v;
  Alcotest.(check bool) "roundtrip" true
    (Node_id.equal id (Node_id.of_int ~base:16 ~len:6 v))

let test_id_collections () =
  let a = id_of "aa" and b = id_of "bb" in
  let s = Node_id.Set.add a (Node_id.Set.add b Node_id.Set.empty) in
  Alcotest.(check int) "set" 2 (Node_id.Set.cardinal s);
  let tbl = Node_id.Tbl.create 4 in
  Node_id.Tbl.replace tbl a 1;
  Node_id.Tbl.replace tbl (id_of "aa") 2;
  Alcotest.(check int) "hashtbl dedupes equal ids" 1 (Node_id.Tbl.length tbl)

(* --- Config --- *)

let test_config_validate () =
  Alcotest.(check bool) "default ok" true (Config.validate Config.default = Ok ());
  let bad = { Config.default with Config.base = 10 } in
  Alcotest.(check bool) "non-power-of-two rejected" true (Config.validate bad <> Ok ());
  let bad2 = { Config.default with Config.redundancy = 0 } in
  Alcotest.(check bool) "zero redundancy rejected" true (Config.validate bad2 <> Ok ())

let test_config_scaled_k () =
  let cfg = { Config.default with Config.k_list = 4 } in
  Alcotest.(check bool) "grows with n" true
    (Config.scaled_k cfg ~n:4096 > Config.scaled_k cfg ~n:16);
  Alcotest.(check bool) "floor respected" true (Config.scaled_k cfg ~n:2 >= 4)

(* --- Id_index --- *)

let test_index_basic () =
  let t = Id_index.create ~base:16 in
  List.iter (fun s -> Id_index.add t (id_of s)) [ "ab12"; "ab34"; "ac00"; "ff00" ];
  Alcotest.(check int) "size" 4 (Id_index.size t);
  Alcotest.(check bool) "mem" true (Id_index.mem t (id_of "ab12"));
  Alcotest.(check bool) "not mem" false (Id_index.mem t (id_of "abff"));
  let prefix = Node_id.digits (id_of "ab00") in
  Alcotest.(check int) "count ab" 2 (Id_index.count_with_prefix t ~prefix ~len:2);
  Alcotest.(check (list int)) "digits after a" [ 0xb; 0xc ]
    (Id_index.digits_after t ~prefix ~len:1);
  Alcotest.(check bool) "extension" true
    (Id_index.exists_extension t ~prefix ~len:2 ~digit:1);
  Alcotest.(check bool) "no extension" false
    (Id_index.exists_extension t ~prefix ~len:2 ~digit:7)

let test_index_remove () =
  let t = Id_index.create ~base:16 in
  Id_index.add t (id_of "ab12");
  Id_index.add t (id_of "ab34");
  Id_index.remove t (id_of "ab12");
  Alcotest.(check int) "size" 1 (Id_index.size t);
  Alcotest.(check bool) "gone" false (Id_index.mem t (id_of "ab12"));
  Id_index.remove t (id_of "ab12");
  Alcotest.(check int) "idempotent" 1 (Id_index.size t);
  let prefix = Node_id.digits (id_of "ab12") in
  Alcotest.(check bool) "branch pruned" false
    (Id_index.exists_extension t ~prefix ~len:2 ~digit:1)

let test_index_ids_with_prefix () =
  let t = Id_index.create ~base:16 in
  List.iter (fun s -> Id_index.add t (id_of s)) [ "ab12"; "ab34"; "cd00" ];
  let prefix = Node_id.digits (id_of "ab00") in
  let got =
    Id_index.ids_with_prefix t ~prefix ~len:2 |> List.map Node_id.to_string
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "enumeration" [ "ab12"; "ab34" ] got

(* --- Routing_table --- *)

let cfg4 = { Config.default with Config.id_digits = 4; redundancy = 2 }

let test_table_self_entries () =
  let owner = id_of "a1b2" in
  let t = Routing_table.create cfg4 ~owner in
  (* the owner occupies its own digit slot at every level *)
  for level = 0 to 3 do
    let digit = Node_id.digit owner level in
    match Routing_table.primary t ~level ~digit with
    | Some e -> Alcotest.(check bool) "self primary" true (Node_id.equal e.Routing_table.id owner)
    | None -> Alcotest.fail "missing self entry"
  done;
  Alcotest.(check int) "entry_count excludes self" 0 (Routing_table.entry_count t)

let test_table_consider_ordering () =
  let owner = id_of "a000" in
  let t = Routing_table.create cfg4 ~owner in
  (* three candidates for slot (1, digit of second position) with R=2 *)
  let c1 = id_of "ab11" and c2 = id_of "ab22" and c3 = id_of "ab33" in
  Alcotest.(check bool) "add far" true
    (Routing_table.consider t ~level:1 ~candidate:c1 ~dist:5.0 = `Added None);
  Alcotest.(check bool) "add close" true
    (Routing_table.consider t ~level:1 ~candidate:c2 ~dist:1.0 = `Added None);
  (match Routing_table.primary t ~level:1 ~digit:0xb with
  | Some e -> Alcotest.(check bool) "closest is primary" true (Node_id.equal e.Routing_table.id c2)
  | None -> Alcotest.fail "slot empty");
  (* closer third candidate evicts the farthest *)
  (match Routing_table.consider t ~level:1 ~candidate:c3 ~dist:2.0 with
  | `Added (Some evicted) ->
      Alcotest.(check bool) "evicted farthest" true (Node_id.equal evicted c1)
  | _ -> Alcotest.fail "expected eviction");
  (* a far fourth candidate is rejected *)
  Alcotest.(check bool) "reject far" true
    (Routing_table.consider t ~level:1 ~candidate:(id_of "ab44") ~dist:9.0 = `Rejected);
  (* re-offering an existing one refreshes, not duplicates *)
  Alcotest.(check bool) "known" true
    (Routing_table.consider t ~level:1 ~candidate:c2 ~dist:0.5 = `Known);
  Alcotest.(check int) "slot size" 2
    (List.length (Routing_table.slot t ~level:1 ~digit:0xb))

let test_table_remove_and_holes () =
  let owner = id_of "a000" in
  let t = Routing_table.create cfg4 ~owner in
  let c = id_of "ab11" in
  ignore (Routing_table.consider t ~level:0 ~candidate:c ~dist:1.0);
  ignore (Routing_table.consider t ~level:1 ~candidate:c ~dist:1.0);
  Alcotest.(check (list int)) "removed from both levels" [ 0; 1 ] (Routing_table.remove t c);
  Alcotest.(check bool) "hole back" true (Routing_table.is_hole t ~level:1 ~digit:0xb);
  Alcotest.(check bool) "holes listed" true
    (List.exists (fun (l, d) -> l = 1 && d = 0xb) (Routing_table.holes t))

let test_table_backpointers () =
  let owner = id_of "a000" in
  let t = Routing_table.create cfg4 ~owner in
  let other = id_of "b000" in
  Routing_table.add_backpointer t ~level:0 other;
  Alcotest.(check int) "one bp" 1 (List.length (Routing_table.backpointers t ~level:0));
  Routing_table.add_backpointer t ~level:0 other;
  Alcotest.(check int) "no dup" 1 (List.length (Routing_table.backpointers t ~level:0));
  Routing_table.add_backpointer t ~level:0 owner;
  Alcotest.(check int) "self skipped" 1 (List.length (Routing_table.backpointers t ~level:0));
  Routing_table.remove_backpointer t ~level:0 other;
  Alcotest.(check int) "removed" 0 (List.length (Routing_table.backpointers t ~level:0))

let test_table_known_at_level () =
  let owner = id_of "a000" in
  let t = Routing_table.create cfg4 ~owner in
  ignore (Routing_table.consider t ~level:1 ~candidate:(id_of "ab11") ~dist:1.0);
  ignore (Routing_table.consider t ~level:1 ~candidate:(id_of "ac22") ~dist:2.0);
  let known =
    Routing_table.known_at_level t ~level:1
    |> List.map Node_id.to_string |> List.sort String.compare
  in
  Alcotest.(check (list string)) "both digits, owner excluded" [ "ab11"; "ac22" ] known

(* --- Pointer_store --- *)

let test_pointer_store_roundtrip () =
  let ps = Pointer_store.create () in
  let guid = id_of "dead" and server = id_of "beef" in
  Alcotest.(check bool) "new" true
    (Pointer_store.store ps ~guid ~server ~root_idx:0 ~previous:None ~expires:10. = `New);
  (match Pointer_store.store ps ~guid ~server ~root_idx:0
           ~previous:(Some (id_of "aaaa")) ~expires:20. with
  | `Refreshed None -> ()
  | _ -> Alcotest.fail "expected refresh returning old previous");
  Alcotest.(check int) "size" 1 (Pointer_store.size ps);
  (match Pointer_store.find ps ~guid ~server ~root_idx:0 with
  | Some r ->
      Alcotest.(check bool) "previous updated" true
        (r.Pointer_store.previous = Some (id_of "aaaa"));
      Alcotest.(check bool) "expiry extended" true (r.Pointer_store.expires >= 20.)
  | None -> Alcotest.fail "record missing");
  (* same guid+server, different root: distinct record *)
  ignore (Pointer_store.store ps ~guid ~server ~root_idx:1 ~previous:None ~expires:10.);
  Alcotest.(check int) "roots distinct" 2 (Pointer_store.size ps);
  Alcotest.(check int) "find_guid sees both" 2 (List.length (Pointer_store.find_guid ps guid))

let test_pointer_store_expiry () =
  let ps = Pointer_store.create () in
  let guid = id_of "dead" in
  ignore (Pointer_store.store ps ~guid ~server:(id_of "b001") ~root_idx:0 ~previous:None ~expires:5.);
  ignore (Pointer_store.store ps ~guid ~server:(id_of "b002") ~root_idx:0 ~previous:None ~expires:50.);
  Alcotest.(check int) "one expired" 1 (Pointer_store.expire ps ~now:10.);
  Alcotest.(check int) "one left" 1 (Pointer_store.size ps);
  Alcotest.(check bool) "guid still known" true (Pointer_store.mem_guid ps guid)

let test_pointer_store_remove () =
  let ps = Pointer_store.create () in
  let g1 = id_of "aaaa" and g2 = id_of "bbbb" in
  ignore (Pointer_store.store ps ~guid:g1 ~server:(id_of "0001") ~root_idx:0 ~previous:None ~expires:5.);
  ignore (Pointer_store.store ps ~guid:g1 ~server:(id_of "0002") ~root_idx:0 ~previous:None ~expires:5.);
  ignore (Pointer_store.store ps ~guid:g2 ~server:(id_of "0001") ~root_idx:0 ~previous:None ~expires:5.);
  Alcotest.(check bool) "remove one" true
    (Pointer_store.remove ps ~guid:g1 ~server:(id_of "0001") ~root_idx:0);
  Alcotest.(check bool) "already gone" false
    (Pointer_store.remove ps ~guid:g1 ~server:(id_of "0001") ~root_idx:0);
  Alcotest.(check int) "remove_guid" 1 (Pointer_store.remove_guid ps g1);
  Alcotest.(check int) "g2 untouched" 1 (Pointer_store.size ps);
  Alcotest.(check int) "guids" 1 (List.length (Pointer_store.guids ps))

let () =
  Alcotest.run "ids"
    [
      ( "node_id",
        [
          Alcotest.test_case "roundtrip" `Quick test_id_roundtrip;
          Alcotest.test_case "invalid parse" `Quick test_id_of_string_invalid;
          Alcotest.test_case "common prefix" `Quick test_id_common_prefix;
          Alcotest.test_case "has_prefix" `Quick test_id_has_prefix;
          Alcotest.test_case "salt" `Quick test_id_salt;
          Alcotest.test_case "int roundtrip" `Quick test_id_int_roundtrip;
          Alcotest.test_case "collections" `Quick test_id_collections;
        ] );
      ( "config",
        [
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "scaled k" `Quick test_config_scaled_k;
        ] );
      ( "id_index",
        [
          Alcotest.test_case "basic" `Quick test_index_basic;
          Alcotest.test_case "remove" `Quick test_index_remove;
          Alcotest.test_case "prefix enumeration" `Quick test_index_ids_with_prefix;
        ] );
      ( "routing_table",
        [
          Alcotest.test_case "self entries" `Quick test_table_self_entries;
          Alcotest.test_case "consider ordering" `Quick test_table_consider_ordering;
          Alcotest.test_case "remove & holes" `Quick test_table_remove_and_holes;
          Alcotest.test_case "backpointers" `Quick test_table_backpointers;
          Alcotest.test_case "known_at_level" `Quick test_table_known_at_level;
        ] );
      ( "pointer_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_pointer_store_roundtrip;
          Alcotest.test_case "expiry" `Quick test_pointer_store_expiry;
          Alcotest.test_case "remove" `Quick test_pointer_store_remove;
        ] );
    ]
