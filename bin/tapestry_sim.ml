(* Command-line driver for the Tapestry reproduction: run experiments, build
   networks and inspect them, or trace a single publish/locate. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "quick" -> Ok Evaluation.Experiment.Quick
    | "full" -> Ok Evaluation.Experiment.Full
    | s -> Error (`Msg ("unknown mode: " ^ s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Evaluation.Experiment.Quick -> "quick" | Full -> "full")
  in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Evaluation.Experiment.Quick
    & info [ "mode" ] ~docv:"MODE" ~doc:"Experiment scale: quick or full.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Run parallelizable experiments on D domains (cores). Output is \
           bit-identical to D=1; 0 means the runtime's recommended count.")

(* --- exp --- *)

let exp_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            ("Experiments to run (default all). Known: "
            ^ String.concat ", " Evaluation.Experiment.names))
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into DIR.")
  in
  let run seed mode domains csv names =
    let domains =
      if domains = 0 then Simnet.Parallel.recommended () else domains
    in
    try
      (match csv with
      | None -> Evaluation.Experiment.run_and_print ~seed ~domains mode names
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let names =
            match names with [] -> Evaluation.Experiment.names | _ :: _ -> names
          in
          List.iter
            (fun name ->
              let ts = Evaluation.Experiment.by_name ~seed ~domains mode name in
              List.iteri
                (fun i t ->
                  Simnet.Stats.Table.print t;
                  let file =
                    Filename.concat dir
                      (if i = 0 then name ^ ".csv"
                       else Printf.sprintf "%s_%d.csv" name i)
                  in
                  let oc = open_out file in
                  output_string oc (Simnet.Stats.Table.to_csv t);
                  close_out oc;
                  Printf.printf "wrote %s\n" file)
                ts)
            names);
      Ok ()
    with Invalid_argument msg -> Error (`Msg msg)
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run reproduction experiments and print their tables.")
    Term.(
      term_result (const run $ seed_arg $ mode_arg $ domains_arg $ csv_arg $ names))

(* --- build --- *)

let topology_conv =
  let parse s =
    match
      List.find_opt
        (fun k -> Simnet.Topology.kind_name k = s)
        Simnet.Topology.all_kinds
    with
    | Some k -> Ok k
    | None -> Error (`Msg ("unknown topology: " ^ s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Simnet.Topology.kind_name k))

let build_cmd =
  let n_arg =
    Arg.(value & opt int 256 & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let topo_arg =
    Arg.(
      value
      & opt topology_conv Simnet.Topology.Uniform_square
      & info [ "topology" ] ~docv:"KIND"
          ~doc:"Topology kind (uniform-square, uniform-torus, grid, ring, clustered, star, random-metric).")
  in
  let audit_arg =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the full mesh invariant audit (Properties 1/2, backpointer \
             symmetry, pointer expiry, owner presence) on the built network \
             and fail on any violation.")
  in
  let run seed n kind audit =
    let open Tapestry in
    let rng = Simnet.Rng.create seed in
    let metric = Simnet.Topology.generate kind ~n ~rng in
    let addrs = List.init n (fun i -> i) in
    let t0 = Sys.time () in
    let net, reports = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
    let dt = Sys.time () -. t0 in
    Printf.printf "built %d nodes on %s in %.2fs (cpu)\n" n (Simnet.Topology.kind_name kind) dt;
    let msgs =
      List.map (fun (r : Insert.report) -> float_of_int r.Insert.cost.Simnet.Cost.messages) reports
    in
    Format.printf "insert messages: %a@." Simnet.Stats.pp_summary (Simnet.Stats.summarize msgs);
    let space =
      Network.alive_nodes net
      |> List.map (fun (nd : Node.t) -> float_of_int (Routing_table.entry_count nd.Node.table))
    in
    Format.printf "table entries/node: %a@." Simnet.Stats.pp_summary (Simnet.Stats.summarize space);
    let v1 = Network.check_property1 net in
    Printf.printf "property 1 violations: %d\n" (List.length v1);
    let total = ref 0 and optimal = ref 0 in
    Network.check_property2 net ~total ~optimal;
    Printf.printf "property 2 optimal primaries: %d/%d\n" !optimal !total;
    let rng2 = Simnet.Rng.create (seed + 2) in
    Printf.printf "expansion constant (est.): %.2f\n"
      (Simnet.Metric.expansion_estimate metric ~samples:200 ~rng:rng2);
    if audit then begin
      let report = Audit.run net in
      Format.printf "%a@." Audit.pp_report report;
      if not (Audit.is_clean report) then
        Error (`Msg "audit found invariant violations")
      else Ok ()
    end
    else Ok ()
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a network incrementally and report its health.")
    Term.(term_result (const run $ seed_arg $ n_arg $ topo_arg $ audit_arg))

(* --- trace --- *)

let trace_cmd =
  let n_arg = Arg.(value & opt int 128 & info [ "n"; "size" ] ~docv:"N" ~doc:"Network size.") in
  let run seed n =
    let open Tapestry in
    let rng = Simnet.Rng.create seed in
    let metric = Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng in
    let addrs = List.init n (fun i -> i) in
    let net, _ = Insert.build_incremental ~seed:(seed + 1) Config.default metric ~addrs in
    let cfg = net.Network.config in
    let server = Network.random_alive net in
    let guid = Node_id.random ~base:cfg.Config.base ~len:cfg.Config.id_digits net.Network.rng in
    let outcome = Publish.publish net ~server guid in
    Printf.printf "object %s published by %s; root %s (path %d hops)\n"
      (Node_id.to_string guid)
      (Node_id.to_string server.Node.id)
      (Node_id.to_string (List.hd outcome.Publish.roots).Node.id)
      (List.hd outcome.Publish.path_lengths);
    let client = Network.random_alive net in
    let res, cost = Network.measure net (fun () -> Locate.locate net ~client guid) in
    (match res.Locate.server with
    | Some s ->
        Printf.printf "client %s located replica at %s\n"
          (Node_id.to_string client.Node.id) (Node_id.to_string s.Node.id);
        Printf.printf "walk: %s\n"
          (String.concat " -> "
             (List.map (fun (h : Node.t) -> Node_id.to_string h.Node.id) res.Locate.walk));
        Printf.printf "cost: %d msgs, %d hops, %.4f latency (optimal %.4f)\n"
          cost.Simnet.Cost.messages cost.Simnet.Cost.hops cost.Simnet.Cost.latency
          (Network.dist net client server)
    | None -> Printf.printf "object not found\n")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Publish one object and trace a locate for it.")
    Term.(const run $ seed_arg $ n_arg)

(* --- scale --- *)

let scale_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 100_000; 300_000; 1_000_000 ]
      & info [ "sizes" ] ~docv:"N,N,.."
          ~doc:
            "Comma-separated mesh sizes, run in order (each network is \
             dropped before the next, so peak residency is one mesh).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) (Some "BENCH_scale.json")
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write machine-readable results (tapestry-bench/1 schema with a \
             \"scale\" array); \"-\" disables.")
  in
  let objects_arg =
    Arg.(
      value & opt int 1000
      & info [ "objects" ] ~docv:"K" ~doc:"Objects published per size.")
  in
  let queries_arg =
    Arg.(
      value & opt int 2000
      & info [ "queries" ] ~docv:"K" ~doc:"Locate queries sampled per size.")
  in
  let audit_arg =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the full invariant audit on each mesh (adds minutes at \
             10^6 nodes) and fail on any violation.")
  in
  let run seed domains sizes json objects queries audit =
    let domains =
      if domains = 0 then Simnet.Parallel.recommended () else domains
    in
    match sizes with
    | [] -> Error (`Msg "scale: no sizes given")
    | _ :: _ ->
      let progress msg = Printf.eprintf "[scale] %s\n%!" msg in
      let points, table =
        Evaluation.Experiment.scale ~seed ~domains ~now:Unix.gettimeofday
          ~objects ~queries ~audit ~progress ~sizes ()
      in
      Simnet.Stats.Table.print table;
      (match json with
      | None | Some "-" -> ()
      | Some file ->
          let open Simnet.Json in
          let sp (p : Evaluation.Experiment.scale_point) =
            let s = p.Evaluation.Experiment.sp_stats in
            let open Tapestry.Static_build in
            Obj
              [
                ("n", Int p.Evaluation.Experiment.sp_n);
                ("build_wall_s", Float p.Evaluation.Experiment.sp_build_wall_s);
                ("wall_s", Float p.Evaluation.Experiment.sp_wall_s);
                ("insert_msgs_mean", Float s.msgs.mean);
                ("insert_msgs_late_mean", Float s.msgs_late.mean);
                ("insert_fit_c", Float p.Evaluation.Experiment.sp_insert_fit_c);
                ("insert_hops_mean", Float s.hops.mean);
                ("multicast_reached_mean", Float s.multicast_reached.mean);
                ("pointers_transferred", Int s.pointers_transferred);
                ("entries_per_node", Float s.entries.mean);
                ("backpointers_per_node", Float s.backpointers.mean);
                ("locate_hops", Float p.Evaluation.Experiment.sp_locate_hops);
                ( "locate_success",
                  Float p.Evaluation.Experiment.sp_locate_success );
                ("stretch_mean", Float p.Evaluation.Experiment.sp_stretch_mean);
                ("stretch_p95", Float p.Evaluation.Experiment.sp_stretch_p95);
                ( "footprint_total_bytes",
                  Int s.footprint.Tapestry.Network.total_bytes );
                ( "bytes_per_node",
                  Float p.Evaluation.Experiment.sp_bytes_per_node );
                ("peak_rss_kb", Int p.Evaluation.Experiment.sp_peak_rss_kb);
                ( "gc_top_heap_words",
                  Int p.Evaluation.Experiment.sp_gc_top_heap_words );
                ("minor_words", Float p.Evaluation.Experiment.sp_minor_words);
                ( "audit_violations",
                  match p.Evaluation.Experiment.sp_audit_violations with
                  | Some v -> Int v
                  | None -> Null );
              ]
          in
          let doc =
            Obj
              [
                ("schema", String "tapestry-bench/1");
                ("seed", Int seed);
                ("domains", Int domains);
                ("micro", List []);
                ("tables", List []);
                ("scale", List (List.map sp points));
              ]
          in
          let oc = open_out file in
          output_string oc (to_string doc);
          close_out oc;
          Printf.printf "wrote %s\n" file);
      let dirty =
        List.exists
          (fun (p : Evaluation.Experiment.scale_point) ->
            match p.Evaluation.Experiment.sp_audit_violations with
            | Some v -> v > 0
            | None -> false)
          points
      in
      if dirty then Error (`Msg "scale: audit found invariant violations")
      else Ok ()
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Streamed 10^5-10^6-node construction re-measuring the E1/E2/E4 \
          claims, with wall-clock and resident-size accounting.")
    Term.(
      term_result
        (const run $ seed_arg $ domains_arg $ sizes_arg $ json_arg
       $ objects_arg $ queries_arg $ audit_arg))

(* --- serve --- *)

let serve_cmd =
  let n_arg =
    Arg.(
      value & opt int 65_536
      & info [ "n"; "size" ] ~docv:"N" ~doc:"Mesh size (streamed build).")
  in
  let requests_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "requests" ] ~docv:"R" ~doc:"Total requests to serve.")
  in
  let rate_arg =
    Arg.(
      value & opt float 50_000.
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Aggregate arrival rate, requests per virtual second.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"S" ~doc:"Zipf popularity exponent (0 = uniform).")
  in
  let objects_arg =
    Arg.(
      value & opt int 10_000
      & info [ "objects" ] ~docv:"K" ~doc:"Distinct objects (popularity ranks).")
  in
  let publish_arg =
    Arg.(
      value & opt float 0.05
      & info [ "publish" ] ~docv:"P" ~doc:"Publish fraction of the mix.")
  in
  let unpublish_arg =
    Arg.(
      value & opt float 0.01
      & info [ "unpublish" ] ~docv:"P" ~doc:"Unpublish fraction of the mix.")
  in
  let service_arg =
    Arg.(
      value & opt float 1e-4
      & info [ "service" ] ~docv:"S"
          ~doc:"Virtual seconds of actor work per message (queueing knob).")
  in
  let latency_arg =
    Arg.(
      value & opt float 1e-5
      & info [ "latency" ] ~docv:"S"
          ~doc:"Virtual seconds per unit of metric distance.")
  in
  let window_arg =
    Arg.(
      value & opt float 0.02
      & info [ "window" ] ~docv:"S" ~doc:"Barrier window width, virtual seconds.")
  in
  let mailbox_arg =
    Arg.(
      value & opt int 64
      & info [ "mailbox-cap" ] ~docv:"C"
          ~doc:"Bounded mailbox capacity (overflow drops the newcomer).")
  in
  let kill_arg =
    Arg.(
      value & opt float 0.
      & info [ "kill-rate" ] ~docv:"R" ~doc:"Node failures per virtual second.")
  in
  let join_arg =
    Arg.(
      value & opt float 0.
      & info [ "join-rate" ] ~docv:"R" ~doc:"Churn joins per virtual second.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) (Some "BENCH_serve.json")
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write machine-readable results (tapestry-bench/1 schema with a \
             \"serve\" array); \"-\" disables.")
  in
  let audit_arg =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Quiesce the mesh after the run (repair, expire) and run the \
             full invariant audit (including cache coherence when a cache \
             is attached); fail on any violation.")
  in
  let cache_arg =
    Arg.(
      value & opt string "0"
      & info [ "cache-size" ] ~docv:"W[,W...]"
          ~doc:
            "Per-node object-cache ways; 0 disables caching (bit-identical \
             to the uncached engine).  A comma-separated list serves one \
             row per size, reusing the built mesh across zero-churn rows.")
  in
  let policy_arg =
    Arg.(
      value & opt string "clock"
      & info [ "cache-policy" ] ~docv:"P"
          ~doc:"Cache eviction policy: $(b,clock) or $(b,2random).")
  in
  let coop_arg =
    Arg.(
      value & opt string "0"
      & info [ "coop" ] ~docv:"B[,B...]"
          ~doc:
            "Cooperative hint exchange (0 = off, 1 = on).  A comma-separated \
             list crosses with --cache-size: one row per (size, coop) pair; \
             coop=1 is skipped for cache-size 0 (it needs a cache).")
  in
  let hint_k_arg =
    Arg.(
      value & opt int 16
      & info [ "hint-k" ] ~docv:"K"
          ~doc:"Top-k digest entries a shard offers per barrier (coop only).")
  in
  let hint_budget_arg =
    Arg.(
      value & opt int 12
      & info [ "hint-budget" ] ~docv:"B"
          ~doc:
            "Max hints one node accepts per exchange event, and the FETCH \
             unwind's seeding cap (coop only).")
  in
  let run seed domains n requests rate zipf objects publish unpublish service
      latency window mailbox_cap kill_rate join_rate json audit cache_sizes
      cache_policy coop_list hint_k hint_budget =
    let open Tapestry in
    let int_list s =
      try
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map int_of_string
      with _ -> []
    in
    let cache_sizes = int_list cache_sizes in
    let coop_list = int_list coop_list in
    match (cache_sizes, coop_list) with
    | [], _ ->
        Error (`Msg "serve: --cache-size expects a comma-separated int list")
    | _, [] -> Error (`Msg "serve: --coop expects a comma-separated 0/1 list")
    | _, cs when List.exists (fun c -> c <> 0 && c <> 1) cs ->
        Error (`Msg "serve: --coop entries must be 0 or 1")
    | cache_sizes, coop_list -> (
      match Obj_cache.policy_of_string cache_policy with
      | None -> Error (`Msg "serve: --cache-policy expects clock or 2random")
      | Some policy when hint_k <= 0 || hint_budget <= 0 ->
          ignore policy;
          Error (`Msg "serve: --hint-k and --hint-budget must be positive")
      | Some policy ->
          (* resolve here so build and serve agree and the JSON records the
             actual fold width *)
          let domains =
            if domains = 0 then Simnet.Parallel.recommended () else domains
          in
          let rng = Simnet.Rng.create seed in
          let metric =
            Simnet.Topology.generate Simnet.Topology.Uniform_square ~n ~rng
          in
          (* soft state must outlive the run: locates past the TTL would find
             an expired (auto-clean but empty) mesh *)
          let duration_est = float_of_int requests /. rate in
          let ttl =
            Float.max Config.default.Config.pointer_ttl (4. *. duration_est)
          in
          let cfg = { Config.default with Config.pointer_ttl = ttl } in
          let progress inserted total =
            if inserted = total then
              Printf.eprintf "[serve] built %d nodes\n%!" total
          in
          let build () =
            let t0 = Unix.gettimeofday () in
            let net, _ =
              Static_build.build_streamed ~seed:(seed + 1) ~domains cfg metric
                ~n
                ~progress:(fun ~inserted ~total -> progress inserted total)
            in
            let build_wall = Unix.gettimeofday () -. t0 in
            Printf.eprintf "[serve] build took %.1fs\n%!" build_wall;
            (net, build_wall)
          in
          let net0, build_wall0 = build () in
          (* serve rows may reuse the mesh: the run only mutates soft state
             (pointers, replicas, caches, clock) unless churn kills or joins
             nodes, and the driver's RNG draws are restorable from a snapshot
             — so a reset row replays exactly as a fresh build would *)
          let rng_snap = Simnet.Rng.copy net0.Network.rng in
          let churned = kill_rate > 0. || join_rate > 0. in
          let cur = ref (Some (net0, build_wall0)) in
          let next_mesh () =
            match !cur with
            | Some (net, bw) ->
                cur := None;
                (net, bw)
            | None ->
                if churned then build ()
                else begin
                  let net = net0 in
                  Network.clear_soft_state net;
                  net.Network.rng <- Simnet.Rng.copy rng_snap;
                  (net, 0.)
                end
          in
          let failures = ref [] in
          (* row per (cache-size, coop) pair; coop needs a cache, so the
             coop=1 column is skipped at cache-size 0 *)
          let points =
            List.concat_map
              (fun cache_size ->
                List.filter_map
                  (fun coop ->
                    if coop = 1 && cache_size <= 0 then None
                    else Some (cache_size, coop = 1))
                  coop_list)
              cache_sizes
          in
          let rows =
            List.map
              (fun (cache_size, coop) ->
                let net, build_wall = next_mesh () in
                let params =
                  {
                    Serve.Driver.seed;
                    requests;
                    rate;
                    zipf_s = zipf;
                    objects;
                    p_publish = publish;
                    p_unpublish = unpublish;
                    latency;
                    service;
                    ttl;
                    window;
                    mailbox_cap;
                    kill_rate;
                    join_rate;
                    domains;
                    cache_size;
                    cache_policy = policy;
                    coop;
                    hint_k;
                    hint_budget;
                  }
                in
                let r = Serve.Driver.run ~net params ~now:Unix.gettimeofday in
                let open Serve.Driver in
                let qv p = Simnet.Stats.Hist.quantile r.hist_v p in
                let qw p = Simnet.Stats.Hist.quantile r.hist_w p in
                let throughput = float_of_int r.injected /. r.wall_s in
                let tl = r.tally in
                let lookups = Simnet.Stats.Tally.lookups tl in
                let hit_rate = Simnet.Stats.Tally.hit_rate tl in
                let dpr =
                  if r.injected = 0 then 0.
                  else float_of_int r.delivered /. float_of_int r.injected
                in
                Printf.printf
                  "served %d requests over n=%d in %.2fs wall (%.0f req/s, \
                   %d barriers, %.2f virtual s, cache=%d/%s%s)\n"
                  r.injected n r.wall_s throughput r.barriers r.duration_v
                  cache_size
                  (Obj_cache.policy_to_string policy)
                  (if coop then
                     Printf.sprintf ", coop k=%d budget=%d" hint_k hint_budget
                   else "");
                Printf.printf
                  "  completed %d, failed %d (dropped %d, dead-letter %d), \
                   delivered %d msgs (%.2f/req), churn %d kills / %d joins\n"
                  r.completed r.failed r.dropped r.dead_letter r.delivered dpr
                  r.kills r.joins;
                if cache_size > 0 then
                  Printf.printf
                    "  cache: %d lookups, hit-rate %.3f (%d hits / %d miss / \
                     %d stale), %d fills, %d evicts, %d recoveries\n"
                    lookups hit_rate tl.Simnet.Stats.Tally.hits
                    tl.Simnet.Stats.Tally.misses tl.Simnet.Stats.Tally.stale
                    tl.Simnet.Stats.Tally.fills tl.Simnet.Stats.Tally.evicts
                    tl.Simnet.Stats.Tally.recoveries;
                if coop then
                  Printf.printf "  coop: %d hint fills, %d hint hits\n"
                    tl.Simnet.Stats.Tally.hint_fills
                    tl.Simnet.Stats.Tally.hint_hits;
                Printf.printf
                  "  virtual latency p50 %.6f  p90 %.6f  p99 %.6f  p999 %.6f\n"
                  (qv 0.50) (qv 0.90) (qv 0.99) (qv 0.999);
                Printf.printf
                  "  wall latency    p50 %.6f  p90 %.6f  p99 %.6f  p999 %.6f\n"
                  (qw 0.50) (qw 0.90) (qw 0.99) (qw 0.999);
                let audit_violations =
                  if audit then begin
                    Serve.Shard.quiesce r.engine ~clock:(r.duration_v +. 1.);
                    let report = Audit.run net in
                    Format.printf "%a@." Audit.pp_report report;
                    let v = List.length report.Audit.violations in
                    if v > 0 then
                      failures :=
                        Printf.sprintf "cache=%d coop=%b: %d audit violations"
                          cache_size coop v
                        :: !failures;
                    Some v
                  end
                  else None
                in
                let open Simnet.Json in
                Obj
                  [
                    ("n", Int n);
                    ("requests", Int requests);
                    ("rate", Float rate);
                    ("zipf_s", Float zipf);
                    ("objects", Int objects);
                    ("p_publish", Float publish);
                    ("p_unpublish", Float unpublish);
                    ("service", Float service);
                    ("latency", Float latency);
                    ("window", Float window);
                    ("mailbox_cap", Int mailbox_cap);
                    ("kill_rate", Float kill_rate);
                    ("join_rate", Float join_rate);
                    ("cache_size", Int cache_size);
                    ( "cache_policy",
                      if cache_size > 0 then
                        String (Obj_cache.policy_to_string policy)
                      else Null );
                    ("coop", Int (if coop then 1 else 0));
                    ("hint_k", if coop then Int hint_k else Null);
                    ("hint_budget", if coop then Int hint_budget else Null);
                    ("build_wall_s", Float build_wall);
                    ("wall_s", Float r.wall_s);
                    ("duration_v", Float r.duration_v);
                    ("throughput_rps", Float throughput);
                    ("p50_virtual", Float (qv 0.50));
                    ("p90_virtual", Float (qv 0.90));
                    ("p99_virtual", Float (qv 0.99));
                    ("p999_virtual", Float (qv 0.999));
                    ("p50_wall", Float (qw 0.50));
                    ("p99_wall", Float (qw 0.99));
                    ("p999_wall", Float (qw 0.999));
                    ("injected", Int r.injected);
                    ("completed", Int r.completed);
                    ("failed", Int r.failed);
                    ("dropped", Int r.dropped);
                    ("dead_letter", Int r.dead_letter);
                    ("delivered", Int r.delivered);
                    ("delivered_per_request", Float dpr);
                    ("cache_hits", Int tl.Simnet.Stats.Tally.hits);
                    ("cache_misses", Int tl.Simnet.Stats.Tally.misses);
                    ("cache_stale", Int tl.Simnet.Stats.Tally.stale);
                    ("cache_fills", Int tl.Simnet.Stats.Tally.fills);
                    ("cache_evicts", Int tl.Simnet.Stats.Tally.evicts);
                    ("recovered", Int tl.Simnet.Stats.Tally.recoveries);
                    ("hint_fills", Int tl.Simnet.Stats.Tally.hint_fills);
                    ("hint_hits", Int tl.Simnet.Stats.Tally.hint_hits);
                    ("cache_hit_rate", Float hit_rate);
                    ("kills", Int r.kills);
                    ("joins", Int r.joins);
                    ("barriers", Int r.barriers);
                    ( "audit_violations",
                      match audit_violations with Some v -> Int v | None -> Null
                    );
                  ])
              points
          in
          (match json with
          | None | Some "-" -> ()
          | Some file ->
              let open Simnet.Json in
              let doc =
                Obj
                  [
                    ("schema", String "tapestry-bench/1");
                    ("seed", Int seed);
                    ("domains", Int domains);
                    ("micro", List []);
                    ("tables", List []);
                    ("scale", List []);
                    ("serve", List rows);
                  ]
              in
              let oc = open_out file in
              output_string oc (to_string doc);
              close_out oc;
              Printf.printf "wrote %s\n" file);
          (match !failures with
          | [] -> Ok ()
          | fs ->
              Error
                (`Msg
                  ("serve: audit found invariant violations ("
                  ^ String.concat "; " (List.rev fs)
                  ^ ")"))))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Actor-model serving runtime: domain-sharded mailboxes driving a \
          Zipf locate/publish mix with p50/p99/p999 latency accounting and \
          an optional per-node object-pointer cache.")
    Term.(
      term_result
        (const run $ seed_arg $ domains_arg $ n_arg $ requests_arg $ rate_arg
       $ zipf_arg $ objects_arg $ publish_arg $ unpublish_arg $ service_arg
       $ latency_arg $ window_arg $ mailbox_arg $ kill_arg $ join_arg
       $ json_arg $ audit_arg $ cache_arg $ policy_arg $ coop_arg $ hint_k_arg
       $ hint_budget_arg))

let main =
  Cmd.group
    (Cmd.info "tapestry_sim" ~version:"1.0.0"
       ~doc:"Reproduction of 'Distributed Object Location in a Dynamic Network'.")
    [ exp_cmd; build_cmd; trace_cmd; scale_cmd; serve_cmd ]

let () = exit (Cmd.eval main)
